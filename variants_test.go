// Variant parity tests: every program in testdata/ and the psrc corpus
// (the sources the examples run) must produce identical results under
// every execution variant — sequential, parallel at several widths and
// grains, loop-fused, strict, with virtual windows ablated, and with
// the automatic §4 hyperplane (wavefront) scheduling both on and off.
// The sequential run is the reference; all others are compared element
// for element through the JSON encoding. Run under -race (CI does) this
// also shakes out data races in the DOALL and wavefront dispatch paths.
package repro

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

// variantProgram is one source + module + concrete arguments.
type variantProgram struct {
	name   string
	src    string
	module string
	args   []any
}

func grid2D(m int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(0); i <= m+1; i++ {
		for j := int64(0); j <= m+1; j++ {
			var v float64
			if i > 0 && i <= m && j > 0 && j <= m {
				v = float64((i*31+j*17)%19) / 19.0
			}
			a.SetF([]int64{i, j}, v)
		}
	}
	return a
}

func vector(lo, hi int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: lo, Hi: hi})
	for i := lo; i <= hi; i++ {
		a.SetF([]int64{i}, float64((i*13+5)%23)/7.0)
	}
	return a
}

// gridRange builds a 2-D seed over [lo,hi]×[lo,hi].
func gridRange(lo, hi int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: lo, Hi: hi}, ps.Axis{Lo: lo, Hi: hi})
	for i := lo; i <= hi; i++ {
		for j := lo; j <= hi; j++ {
			a.SetF([]int64{i, j}, float64((i*29+j*11)%13)/13.0)
		}
	}
	return a
}

// grid3D builds an (n+1)³ cube over [0,n]³ (the Heat3D domain).
func grid3D(n int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n}, ps.Axis{Lo: 0, Hi: n}, ps.Axis{Lo: 0, Hi: n})
	for i := int64(0); i <= n; i++ {
		for j := int64(0); j <= n; j++ {
			for k := int64(0); k <= n; k++ {
				a.SetF([]int64{i, j, k}, float64((i*31+j*17+k*7)%19)/19.0)
			}
		}
	}
	return a
}

// intVector builds a 1-D int array over [lo,hi] with small repeating
// values, so sequence comparisons hit both matches and mismatches.
func intVector(lo, hi int64) *ps.Array {
	a := ps.NewIntArray(ps.Axis{Lo: lo, Hi: hi})
	for i := lo; i <= hi; i++ {
		a.SetI([]int64{i}, (i*5+3)%4)
	}
	return a
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func variantPrograms(t *testing.T) []variantProgram {
	t.Helper()
	return []variantProgram{
		{"testdata/relaxation", mustRead(t, "testdata/relaxation.ps"), "Relaxation",
			[]any{grid2D(6), int64(6), int64(5)}},
		{"testdata/gauss_seidel", mustRead(t, "testdata/gauss_seidel.ps"), "Relaxation",
			[]any{grid2D(6), int64(6), int64(5)}},
		{"testdata/smooth", mustRead(t, "testdata/smooth.ps"), "Smooth",
			[]any{vector(0, 17), int64(16)}},
		{"psrc/Relaxation", psrc.Relaxation, "Relaxation",
			[]any{grid2D(5), int64(5), int64(4)}},
		{"psrc/RelaxationGS", psrc.RelaxationGS, "Relaxation",
			[]any{grid2D(5), int64(5), int64(4)}},
		{"psrc/Heat1D", psrc.Heat1D, "Heat1D",
			[]any{vector(0, 13), int64(12), int64(6), 0.1}},
		{"psrc/Prefix", psrc.Prefix, "Prefix",
			[]any{vector(1, 20), int64(20)}},
		{"psrc/Smooth", psrc.Smooth, "Smooth",
			[]any{vector(0, 17), int64(16)}},
		{"psrc/Pipeline", psrc.Pipeline, "Pipeline",
			[]any{vector(0, 17), int64(16)}},
		{"psrc/Wavefront2D", psrc.Wavefront2D, "Wavefront2D",
			[]any{grid2D(7), int64(7)}},
		{"testdata/skew_stencil", mustRead(t, "testdata/skew_stencil.ps"), "SkewStencil",
			[]any{grid2D(7), int64(7)}},
		{"testdata/diag_chain", mustRead(t, "testdata/diag_chain.ps"), "DiagChain",
			[]any{gridRange(1, 9), int64(9)}},
		{"testdata/mutual", mustRead(t, "testdata/mutual.ps"), "Mutual",
			[]any{grid2D(6), int64(6)}},
		{"testdata/coupled", mustRead(t, "testdata/coupled.ps"), "Coupled",
			[]any{gridRange(1, 9), int64(9)}},
		{"testdata/fuse_pair", mustRead(t, "testdata/fuse_pair.ps"), "FusePair",
			[]any{grid2D(6), int64(6)}},
		{"testdata/reflect", mustRead(t, "testdata/reflect.ps"), "Reflect",
			[]any{gridRange(1, 8), int64(8)}},
		{"psrc/CoupledGrid", psrc.CoupledGrid, "CoupledGrid",
			[]any{grid2D(7), int64(7), int64(3)}},
		{"testdata/smith_waterman", mustRead(t, "testdata/smith_waterman.ps"), "SmithWaterman",
			[]any{intVector(0, 9), intVector(0, 12), int64(9), int64(12)}},
		{"testdata/heat3d", mustRead(t, "testdata/heat3d.ps"), "Heat3D",
			[]any{grid3D(6), int64(6)}},
		{"testdata/edit_distance", mustRead(t, "testdata/edit_distance.ps"), "EditDistance",
			[]any{intVector(1, 8), intVector(1, 11), int64(8), int64(11)}},
	}
}

// TestVariantParity asserts that every execution variant of every corpus
// program matches its sequential reference exactly.
func TestVariantParity(t *testing.T) {
	// The parallel variants run with the default HyperplaneAuto mode, so
	// they execute the wavefront plan wherever a nest is eligible; the
	// HyperOff rows pin the untransformed nests at the same widths, and
	// the remaining rows cross auto-hyperplane with grain, fusion,
	// strictness and window ablation.
	variants := []struct {
		name string
		opts []ps.RunOption
	}{
		{"Par1", []ps.RunOption{ps.Workers(1)}},
		{"Par2", []ps.RunOption{ps.Workers(2)}},
		{"Par4", []ps.RunOption{ps.Workers(4)}},
		{"Par3Grain8", []ps.RunOption{ps.Workers(3), ps.Grain(8)}},
		{"Par2Grain4", []ps.RunOption{ps.Workers(2), ps.Grain(4)}},
		{"FusedSeq", []ps.RunOption{ps.Sequential(), ps.Fused()}},
		{"FusedPar4", []ps.RunOption{ps.Workers(4), ps.Fused()}},
		{"StrictSeq", []ps.RunOption{ps.Sequential(), ps.Strict()}},
		{"StrictPar2", []ps.RunOption{ps.Workers(2), ps.Strict()}},
		{"NoVirtualSeq", []ps.RunOption{ps.Sequential(), ps.NoVirtual()}},
		{"NoVirtualPar4", []ps.RunOption{ps.Workers(4), ps.NoVirtual()}},
		{"HyperOffSeq", []ps.RunOption{ps.Sequential(), ps.WithHyperplane(ps.HyperplaneOff)}},
		{"HyperOffPar2", []ps.RunOption{ps.Workers(2), ps.WithHyperplane(ps.HyperplaneOff)}},
		{"HyperOffPar4", []ps.RunOption{ps.Workers(4), ps.WithHyperplane(ps.HyperplaneOff)}},
		{"HyperOffPar3Grain8", []ps.RunOption{ps.Workers(3), ps.Grain(8), ps.WithHyperplane(ps.HyperplaneOff)}},
		{"HyperOffFusedPar4", []ps.RunOption{ps.Workers(4), ps.Fused(), ps.WithHyperplane(ps.HyperplaneOff)}},
		// Schedule rows: the doacross pipeline and the pinned barrier
		// sweep must both match the sequential reference bitwise, alone
		// and crossed with fusion, grain, strictness and hyperplane-off
		// (where the schedule option must be inert).
		{"BarrierPar4", []ps.RunOption{ps.Workers(4), ps.WithSchedule(ps.ScheduleBarrier)}},
		{"DoacrossPar2", []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"DoacrossPar4", []ps.RunOption{ps.Workers(4), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"DoacrossPar3Grain8", []ps.RunOption{ps.Workers(3), ps.Grain(8), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"DoacrossFusedPar4", []ps.RunOption{ps.Workers(4), ps.Fused(), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"DoacrossStrictPar2", []ps.RunOption{ps.Workers(2), ps.Strict(), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"DoacrossHyperOffPar4", []ps.RunOption{ps.Workers(4), ps.WithHyperplane(ps.HyperplaneOff), ps.WithSchedule(ps.ScheduleDoacross)}},
		// Pipeline rows: the pipeline-first cascade (PS-DSWP decoupled
		// stages over bounded channels) must match the sequential
		// reference bitwise, alone and crossed with workers, fusion,
		// strictness and hyperplane-off (where the schedule is inert).
		{"PipelinePar1", []ps.RunOption{ps.Workers(1), ps.WithSchedule(ps.SchedulePipeline)}},
		{"PipelinePar2", []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.SchedulePipeline)}},
		{"PipelinePar4", []ps.RunOption{ps.Workers(4), ps.WithSchedule(ps.SchedulePipeline)}},
		{"PipelineFusedPar4", []ps.RunOption{ps.Workers(4), ps.Fused(), ps.WithSchedule(ps.SchedulePipeline)}},
		{"PipelineStrictPar2", []ps.RunOption{ps.Workers(2), ps.Strict(), ps.WithSchedule(ps.SchedulePipeline)}},
		{"PipelineHyperOffPar4", []ps.RunOption{ps.Workers(4), ps.WithHyperplane(ps.HyperplaneOff), ps.WithSchedule(ps.SchedulePipeline)}},
	}
	for _, tp := range variantPrograms(t) {
		t.Run(tp.name, func(t *testing.T) {
			prog, err := ps.CompileProgram(tp.name+".ps", tp.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ref, err := prog.Run(tp.module, tp.args, ps.Sequential())
			if err != nil {
				t.Fatalf("sequential reference: %v", err)
			}
			want, err := ps.ResultsToJSON(prog, tp.module, ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					res, err := prog.Run(tp.module, tp.args, v.opts...)
					if err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					got, err := ps.ResultsToJSON(prog, tp.module, res)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s diverges from sequential reference:\ngot  %v\nwant %v", v.name, got, want)
					}
				})
			}
		})
	}
}

// TestAutoHyperplaneEligibility pins down which backend the lowering
// cascade picks per corpus program. Recurrence nests with
// constant-offset dependences and a valid time vector become wavefront
// steps — since the sibling re-merge pre-pass, that includes components
// the scheduler split into adjacent inner nests whose unioned
// dependences still admit a π (mutual). Nests the wavefront analysis
// rejects fall through to the PS-DSWP pipeline backend when downstream
// DOALL consumers stream the nest's outer dimension (reflect). Shapes
// neither backend accepts (1-D recurrences, already-parallel nests)
// keep their sequential DO loops. The compact plan of the default
// (auto) variant is the witness.
func TestAutoHyperplaneEligibility(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		module  string
		backend string // "wavefront", "pipeline" or "sequential"
		pi      string // expected pi rendering for wavefront cases
	}{
		{"testdata/gauss_seidel", mustRead(t, "testdata/gauss_seidel.ps"), "Relaxation", "wavefront", "pi=(2,1,1)"},
		{"testdata/skew_stencil", mustRead(t, "testdata/skew_stencil.ps"), "SkewStencil", "wavefront", "pi=(1,1)"},
		{"testdata/diag_chain", mustRead(t, "testdata/diag_chain.ps"), "DiagChain", "wavefront", "pi=(2,1)"},
		{"psrc/Wavefront2D", psrc.Wavefront2D, "Wavefront2D", "wavefront", "pi=(1,1)"},
		// Multi-equation positives: one time vector for the union of the
		// group's dependence vectors.
		{"testdata/coupled", mustRead(t, "testdata/coupled.ps"), "Coupled", "wavefront", "pi=(2,1)"},
		{"psrc/CoupledGrid", psrc.CoupledGrid, "CoupledGrid", "wavefront", "pi=(1,1)"},
		{"testdata/fuse_pair", mustRead(t, "testdata/fuse_pair.ps"), "FusePair", "wavefront", "pi=(1,1)"}, // two singleton wavefronts unfused
		{"testdata/smith_waterman", mustRead(t, "testdata/smith_waterman.ps"), "SmithWaterman", "wavefront", "pi=(1,1)"},
		// The 3-D positive: the time vector must span all three
		// dimensions of the cube.
		{"testdata/heat3d", mustRead(t, "testdata/heat3d.ps"), "Heat3D", "wavefront", "pi=(1,1,1)"},
		// Boundary equations as their own DOALLs ahead of the interior
		// anti-diagonal wavefront.
		{"testdata/edit_distance", mustRead(t, "testdata/edit_distance.ps"), "EditDistance", "wavefront", "pi=(1,1)"},
		// Re-merge positive: the scheduler splits mutual's component into
		// two adjacent inner nests; the pre-pass re-merges them and the
		// union analysis wavefronts the base schedule.
		{"testdata/mutual", mustRead(t, "testdata/mutual.ps"), "Mutual", "wavefront", "pi=(1,1)"},
		// Pipeline positive: the reflected-column read X[I-1, N+1-J] is
		// not a constant-offset dependence, so the wavefront analysis
		// refuses — but the downstream OutX/OutY DOALLs stream rows of
		// the recurrence, so the cascade decouples the nest PS-DSWP-style.
		{"testdata/reflect", mustRead(t, "testdata/reflect.ps"), "Reflect", "pipeline", ""},
		// Negative cases: the DO loops must survive untransformed.
		{"psrc/Prefix", psrc.Prefix, "Prefix", "sequential", ""},             // 1-D recurrence: no plane, and its consumer iterates I, not the streamed I2
		{"psrc/Relaxation", psrc.Relaxation, "Relaxation", "sequential", ""}, // inner loops already DOALL
		{"psrc/Heat1D", psrc.Heat1D, "Heat1D", "sequential", ""},             // inner loop already DOALL
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := ps.CompileProgram(tc.name+".ps", tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			m := prog.Module(tc.module)
			compact := m.PlanCompact()
			off := m.PlanCompactWith(ps.PlanOptions{Hyperplane: ps.HyperplaneOff})
			if strings.Contains(off, "WAVEFRONT") || strings.Contains(off, "PIPELINE") {
				t.Errorf("hyperplane-off plan still restructured: %q", off)
			}
			switch tc.backend {
			case "wavefront":
				if !strings.Contains(compact, "WAVEFRONT") {
					t.Errorf("expected a wavefront step in auto plan, got %q", compact)
				}
				if !strings.Contains(compact, tc.pi) {
					t.Errorf("plan %q missing time vector %q", compact, tc.pi)
				}
				run, err := prog.Prepare(tc.module, ps.Workers(2))
				if err != nil {
					t.Fatal(err)
				}
				explain := run.Explain()
				if !strings.Contains(explain, "auto-hyperplane") || !strings.Contains(explain, "wavefront") {
					t.Errorf("Explain does not surface the wavefront decision:\n%s", explain)
				}
			case "pipeline":
				if strings.Contains(compact, "WAVEFRONT") {
					t.Errorf("wavefront-ineligible program was transformed: %q", compact)
				}
				if !strings.Contains(compact, "PIPELINE") {
					t.Errorf("expected a pipeline step in auto plan, got %q", compact)
				}
				run, err := prog.Prepare(tc.module, ps.Workers(2))
				if err != nil {
					t.Fatal(err)
				}
				explain := run.Explain()
				for _, want := range []string{"auto-pipeline", "cascade:", "-> pipeline", "wavefront rejected:"} {
					if !strings.Contains(explain, want) {
						t.Errorf("Explain does not surface the cascade decision (missing %q):\n%s", want, explain)
					}
				}
			default:
				if strings.Contains(compact, "WAVEFRONT") || strings.Contains(compact, "PIPELINE") {
					t.Errorf("ineligible program was transformed: %q", compact)
				}
				if off != compact {
					t.Errorf("auto and off plans differ for ineligible program:\n auto %q\n off  %q", compact, off)
				}
			}
		})
	}
}

// TestMultiEquationWavefront pins the multi-equation tentpole shapes:
// a coupled two-recurrence component lowers to a single wavefront step
// carrying both kernels, the §5-fused variants of the splittable
// corpus programs collapse their merged bodies into one multi-kernel
// wavefront, and a prepared Runner's Explain lists the equations
// sharing the group's π under the wavefront step.
func TestMultiEquationWavefront(t *testing.T) {
	countWavefronts := func(compact string) int { return strings.Count(compact, "WAVEFRONT") }

	coupled, err := ps.CompileProgram("coupled.ps", mustRead(t, "testdata/coupled.ps"))
	if err != nil {
		t.Fatal(err)
	}
	m := coupled.Module("Coupled")
	compact := m.PlanCompact()
	if countWavefronts(compact) != 1 || !strings.Contains(compact, "WAVEFRONT[pi=(2,1)] I×J (eq.2; eq.1)") {
		t.Errorf("coupled auto plan is not a single two-kernel wavefront: %q", compact)
	}
	if pl := m.Plan(); !strings.Contains(pl, "kernels 2") {
		t.Errorf("coupled plan listing missing the kernel-count marker:\n%s", pl)
	}

	run, err := coupled.Prepare("Coupled", ps.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	explain := run.Explain()
	for _, want := range []string{"kernels 2", "eq.2 -> V", "eq.1 -> U", "pi = (2,1)"} {
		if !strings.Contains(explain, want) {
			t.Errorf("Explain does not surface the equations sharing pi (missing %q):\n%s", want, explain)
		}
	}

	// Fusion synergy: mutual's base variant wavefronts too since the
	// re-merge pre-pass rejoins the two inner nests the scheduler split
	// (so base and fused agree); fuse_pair's top-level siblings are NOT
	// re-merged — it keeps two singleton wavefronts until §5 fusion
	// merges them into one two-kernel wavefront.
	for _, tc := range []struct {
		file, module string
		baseWF       int
		fusedCompact string
	}{
		{"testdata/mutual.ps", "Mutual", 1, "WAVEFRONT[pi=(1,1)] I×J (eq.2; eq.1)"},
		{"testdata/fuse_pair.ps", "FusePair", 2, "WAVEFRONT[pi=(1,1)] I×J (eq.1; eq.2)"},
	} {
		prog, err := ps.CompileProgram(tc.file, mustRead(t, tc.file))
		if err != nil {
			t.Fatal(err)
		}
		mod := prog.Module(tc.module)
		if got := countWavefronts(mod.PlanCompact()); got != tc.baseWF {
			t.Errorf("%s base plan has %d wavefront steps, want %d: %q", tc.module, got, tc.baseWF, mod.PlanCompact())
		}
		fused := mod.PlanCompactWith(ps.PlanOptions{Fused: true})
		if countWavefronts(fused) != 1 || !strings.Contains(fused, tc.fusedCompact) {
			t.Errorf("%s fused plan is not a single multi-kernel wavefront: %q", tc.module, fused)
		}
	}
}

// TestVariantParityConcurrent runs the parallel fused variant of every
// corpus program from several goroutines over one shared prepared
// Runner, the service shape; under -race this guards the pooled
// worker-state reuse introduced with the plan executor.
func TestVariantParityConcurrent(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(4))
	defer eng.Close()
	for _, tp := range variantPrograms(t) {
		tp := tp
		t.Run(tp.name, func(t *testing.T) {
			prog, err := eng.Compile(tp.name+".ps", tp.src)
			if err != nil {
				t.Fatal(err)
			}
			seqRef, err := prog.Run(tp.module, tp.args, ps.Sequential())
			if err != nil {
				t.Fatal(err)
			}
			want, err := ps.ResultsToJSON(prog, tp.module, seqRef)
			if err != nil {
				t.Fatal(err)
			}
			run, err := prog.Prepare(tp.module)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 4
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				go func() {
					res, _, err := run.Run(nil, tp.args)
					if err != nil {
						errc <- err
						return
					}
					got, err := ps.ResultsToJSON(prog, tp.module, res)
					if err != nil {
						errc <- err
						return
					}
					if !reflect.DeepEqual(got, want) {
						errc <- fmt.Errorf("concurrent run diverges from sequential reference")
						return
					}
					errc <- nil
				}()
			}
			for g := 0; g < goroutines; g++ {
				if err := <-errc; err != nil {
					t.Error(err)
				}
			}
		})
	}
}
