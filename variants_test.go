// Variant parity tests: every program in testdata/ and the psrc corpus
// (the sources the examples run) must produce identical results under
// every execution variant — sequential, parallel at several widths and
// grains, loop-fused, strict, and with virtual windows ablated. The
// sequential run is the reference; all others are compared element for
// element through the JSON encoding. Run under -race (CI does) this also
// shakes out data races in the DOALL dispatch path.
package repro

import (
	"fmt"
	"os"
	"reflect"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

// variantProgram is one source + module + concrete arguments.
type variantProgram struct {
	name   string
	src    string
	module string
	args   []any
}

func grid2D(m int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(0); i <= m+1; i++ {
		for j := int64(0); j <= m+1; j++ {
			var v float64
			if i > 0 && i <= m && j > 0 && j <= m {
				v = float64((i*31+j*17)%19) / 19.0
			}
			a.SetF([]int64{i, j}, v)
		}
	}
	return a
}

func vector(lo, hi int64) *ps.Array {
	a := ps.NewRealArray(ps.Axis{Lo: lo, Hi: hi})
	for i := lo; i <= hi; i++ {
		a.SetF([]int64{i}, float64((i*13+5)%23)/7.0)
	}
	return a
}

func mustRead(t *testing.T, path string) string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func variantPrograms(t *testing.T) []variantProgram {
	t.Helper()
	return []variantProgram{
		{"testdata/relaxation", mustRead(t, "testdata/relaxation.ps"), "Relaxation",
			[]any{grid2D(6), int64(6), int64(5)}},
		{"testdata/gauss_seidel", mustRead(t, "testdata/gauss_seidel.ps"), "Relaxation",
			[]any{grid2D(6), int64(6), int64(5)}},
		{"testdata/smooth", mustRead(t, "testdata/smooth.ps"), "Smooth",
			[]any{vector(0, 17), int64(16)}},
		{"psrc/Relaxation", psrc.Relaxation, "Relaxation",
			[]any{grid2D(5), int64(5), int64(4)}},
		{"psrc/RelaxationGS", psrc.RelaxationGS, "Relaxation",
			[]any{grid2D(5), int64(5), int64(4)}},
		{"psrc/Heat1D", psrc.Heat1D, "Heat1D",
			[]any{vector(0, 13), int64(12), int64(6), 0.1}},
		{"psrc/Prefix", psrc.Prefix, "Prefix",
			[]any{vector(1, 20), int64(20)}},
		{"psrc/Smooth", psrc.Smooth, "Smooth",
			[]any{vector(0, 17), int64(16)}},
		{"psrc/Pipeline", psrc.Pipeline, "Pipeline",
			[]any{vector(0, 17), int64(16)}},
		{"psrc/Wavefront2D", psrc.Wavefront2D, "Wavefront2D",
			[]any{grid2D(7), int64(7)}},
	}
}

// TestVariantParity asserts that every execution variant of every corpus
// program matches its sequential reference exactly.
func TestVariantParity(t *testing.T) {
	variants := []struct {
		name string
		opts []ps.RunOption
	}{
		{"Par1", []ps.RunOption{ps.Workers(1)}},
		{"Par4", []ps.RunOption{ps.Workers(4)}},
		{"Par3Grain8", []ps.RunOption{ps.Workers(3), ps.Grain(8)}},
		{"FusedSeq", []ps.RunOption{ps.Sequential(), ps.Fused()}},
		{"FusedPar4", []ps.RunOption{ps.Workers(4), ps.Fused()}},
		{"StrictSeq", []ps.RunOption{ps.Sequential(), ps.Strict()}},
		{"NoVirtualSeq", []ps.RunOption{ps.Sequential(), ps.NoVirtual()}},
		{"NoVirtualPar4", []ps.RunOption{ps.Workers(4), ps.NoVirtual()}},
	}
	for _, tp := range variantPrograms(t) {
		t.Run(tp.name, func(t *testing.T) {
			prog, err := ps.CompileProgram(tp.name+".ps", tp.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			ref, err := prog.Run(tp.module, tp.args, ps.Sequential())
			if err != nil {
				t.Fatalf("sequential reference: %v", err)
			}
			want, err := ps.ResultsToJSON(prog, tp.module, ref)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range variants {
				v := v
				t.Run(v.name, func(t *testing.T) {
					res, err := prog.Run(tp.module, tp.args, v.opts...)
					if err != nil {
						t.Fatalf("%s: %v", v.name, err)
					}
					got, err := ps.ResultsToJSON(prog, tp.module, res)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("%s diverges from sequential reference:\ngot  %v\nwant %v", v.name, got, want)
					}
				})
			}
		})
	}
}

// TestVariantParityConcurrent runs the parallel fused variant of every
// corpus program from several goroutines over one shared prepared
// Runner, the service shape; under -race this guards the pooled
// worker-state reuse introduced with the plan executor.
func TestVariantParityConcurrent(t *testing.T) {
	eng := ps.NewEngine(ps.EngineWorkers(4))
	defer eng.Close()
	for _, tp := range variantPrograms(t) {
		tp := tp
		t.Run(tp.name, func(t *testing.T) {
			prog, err := eng.Compile(tp.name+".ps", tp.src)
			if err != nil {
				t.Fatal(err)
			}
			seqRef, err := prog.Run(tp.module, tp.args, ps.Sequential())
			if err != nil {
				t.Fatal(err)
			}
			want, err := ps.ResultsToJSON(prog, tp.module, seqRef)
			if err != nil {
				t.Fatal(err)
			}
			run, err := prog.Prepare(tp.module)
			if err != nil {
				t.Fatal(err)
			}
			const goroutines = 4
			errc := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				go func() {
					res, _, err := run.Run(nil, tp.args)
					if err != nil {
						errc <- err
						return
					}
					got, err := ps.ResultsToJSON(prog, tp.module, res)
					if err != nil {
						errc <- err
						return
					}
					if !reflect.DeepEqual(got, want) {
						errc <- fmt.Errorf("concurrent run diverges from sequential reference")
						return
					}
					errc <- nil
				}()
			}
			for g := 0; g < goroutines; g++ {
				if err := <-errc; err != nil {
					t.Error(err)
				}
			}
		})
	}
}
