// Package repro benchmarks every experiment artifact of the paper
// (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
// recorded results):
//
//   - BenchmarkFig5_Scheduling: the scheduler itself (component
//     decomposition + flowchart construction).
//   - BenchmarkFig6_*: the Jacobi relaxation — sequential baseline vs the
//     DOALL schedule on 1..N workers.
//   - BenchmarkFig7_*: the Gauss–Seidel revision — its all-iterative
//     schedule admits only sequential execution.
//   - BenchmarkSec4_*: the hyperplane-transformed module — the solver,
//     the transformation, and wavefront execution on 1..N workers.
//   - BenchmarkWindow_*: §3.4 window allocation vs full allocation
//     (run with -benchmem: the B/op column is the paper's storage claim).
//   - BenchmarkNative_*: the same algorithms hand-written in Go, isolating
//     the algorithmic shape from interpreter overhead.
//   - BenchmarkEngine_Activation: the service path — a prepared Runner on
//     an Engine's shared pool vs the one-shot Program.Run that builds and
//     tears down a pool per activation.
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/hyperplane"
	"repro/internal/par"
	"repro/internal/psrc"
	"repro/ps"
)

// parRunner returns the persistent-pool parallel runtime used by the
// native wavefront kernel (hundreds of small DOALL planes).
func parRunner(workers int) *par.Pool { return par.NewPool(workers) }

// benchGrid builds the standard input grid.
func benchGrid(m int64) *ps.Array {
	in := ps.NewRealArray(ps.Axis{Lo: 0, Hi: m + 1}, ps.Axis{Lo: 0, Hi: m + 1})
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			in.SetF([]int64{i, j}, float64((i*31+j*17)%19)/19.0)
		}
	}
	return in
}

func mustCompile(b *testing.B, src string) *ps.Program {
	b.Helper()
	prog, err := ps.CompileProgram("bench.ps", src)
	if err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkFig5_Scheduling measures the full front half of the compiler
// on the Figure 1 module: parse, check, dependency graph, MSCC
// decomposition and flowchart construction.
func BenchmarkFig5_Scheduling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ps.CompileProgram("relaxation.ps", psrc.Relaxation); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_Jacobi executes the Figure 6 schedule: the outer K loop
// is iterative, the I/J loops are DOALLs. Sequential is the baseline an
// iterative-only scheduler would produce; workers=N exercises the
// parallel runtime.
func BenchmarkFig6_Jacobi(b *testing.B) {
	const m, maxK = 192, 6
	prog := mustCompile(b, psrc.Relaxation)
	in := benchGrid(m)
	run := func(b *testing.B, opts ...ps.RunOption) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run("Relaxation", []any{in, int64(m), int64(maxK)}, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Seq", func(b *testing.B) { run(b, ps.Sequential()) })
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		b.Run(fmt.Sprintf("Par%d", w), func(b *testing.B) { run(b, ps.Workers(w)) })
	}
}

// BenchmarkFig7_GaussSeidel executes the Figure 7 schedule. All loops are
// iterative, so there is nothing to parallelize — the benchmark records
// the baseline the §4 transformation competes against. The Par variant
// documents that worker count cannot help an all-DO schedule.
func BenchmarkFig7_GaussSeidel(b *testing.B) {
	const m, maxK = 192, 6
	prog := mustCompile(b, psrc.RelaxationGS)
	in := benchGrid(m)
	run := func(b *testing.B, opts ...ps.RunOption) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run("Relaxation", []any{in, int64(m), int64(maxK)}, opts...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("Seq", func(b *testing.B) { run(b, ps.Sequential()) })
	b.Run("ParNoEffect", func(b *testing.B) { run(b, ps.Workers(runtime.NumCPU())) })
}

// BenchmarkSec4_Solve measures the least-time-vector solver on the
// paper's five-inequality system.
func BenchmarkSec4_Solve(b *testing.B) {
	deps := [][]int64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}, {1, 0, -1}, {1, -1, 0}}
	for i := 0; i < b.N; i++ {
		if _, err := hyperplane.SolveTimeVector(deps); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec4_Transform measures the full source-to-source rewrite:
// analysis, unimodular completion, module reconstruction, and recompile.
func BenchmarkSec4_Transform(b *testing.B) {
	prog := mustCompile(b, psrc.RelaxationGS)
	mod := prog.Module("Relaxation")
	for i := 0; i < b.N; i++ {
		hp, err := mod.Hyperplane("eq.3")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ps.CompileProgram("gsh.ps", hp.TransformedSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSec4_Wavefront executes the transformed module: DO over the
// K'=2K+I+J hyperplanes with DOALL planes. Workers=1 measures the sweep
// overhead the transformation introduces (the bounding box of the skewed
// domain plus guards); higher worker counts show the recovered
// parallelism that Figure 7's schedule cannot offer at any worker count.
func BenchmarkSec4_Wavefront(b *testing.B) {
	const m, maxK = 192, 6
	gs := mustCompile(b, psrc.RelaxationGS)
	hp, err := gs.Module("Relaxation").Hyperplane("eq.3")
	if err != nil {
		b.Fatal(err)
	}
	prog := mustCompile(b, hp.TransformedSource)
	in := benchGrid(m)
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		b.Run(fmt.Sprintf("Par%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := prog.Run(hp.TransformedModule, []any{in, int64(m), int64(maxK)}, ps.Workers(w)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWindow compares §3.4 window allocation against physical
// allocation of the full K dimension. Run with -benchmem: the window
// variant allocates 2 planes instead of maxK planes (the B/op gap grows
// linearly in maxK).
func BenchmarkWindow(b *testing.B) {
	const m, maxK = 48, 64
	prog := mustCompile(b, psrc.Relaxation)
	in := benchGrid(m)
	b.Run("Virtual2Planes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run("Relaxation", []any{in, int64(m), int64(maxK)}, ps.Workers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PhysicalMaxKPlanes", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run("Relaxation", []any{in, int64(m), int64(maxK)}, ps.Workers(1), ps.NoVirtual()); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEngine_Activation compares the redesigned service path — one
// Engine whose pool is shared by every activation of a prepared Runner —
// against the legacy one-shot path that spawns and closes a worker pool
// per Run. The gap is pure activation overhead, the cost that dominates
// when many small requests hit the runtime.
func BenchmarkEngine_Activation(b *testing.B) {
	const m, maxK = 48, 4
	workers := runtime.NumCPU()
	in := benchGrid(m)
	args := []any{in, int64(m), int64(maxK)}

	eng := ps.NewEngine(ps.EngineWorkers(workers))
	defer eng.Close()
	prog, err := eng.Compile("bench.ps", psrc.Relaxation)
	if err != nil {
		b.Fatal(err)
	}
	run, err := prog.Prepare("Relaxation")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("PreparedRunnerSharedPool", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := run.Run(ctx, args); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OneShotPoolPerRun", func(b *testing.B) {
		legacy := mustCompile(b, psrc.Relaxation)
		for i := 0; i < b.N; i++ {
			if _, err := legacy.Run("Relaxation", args, ps.Workers(workers)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDOALL_Relaxation measures per-activation DOALL dispatch on the
// testdata Jacobi module through the service path (Engine + prepared
// Runner): the outer K loop is iterative and every plane is a collapsed
// I×J DOALL, so the benchmark is dominated by how cheaply the executor
// turns a schedule into loop iterations. Grain variants expose the
// chunking overhead for small bodies.
func BenchmarkDOALL_Relaxation(b *testing.B) {
	benchDOALL(b, "testdata/relaxation.ps", "Relaxation")
}

// BenchmarkDOALL_GaussSeidel is the same measurement on the testdata
// Gauss–Seidel revision, whose schedule is all-iterative (DO K (DO I (DO
// J))): it isolates the sequential per-iteration path, where descriptor
// dispatch and bound lookups used to be re-paid on every iteration.
func BenchmarkDOALL_GaussSeidel(b *testing.B) {
	benchDOALL(b, "testdata/gauss_seidel.ps", "Relaxation")
}

func benchDOALL(b *testing.B, file, module string) {
	src, err := os.ReadFile(file)
	if err != nil {
		b.Fatal(err)
	}
	eng := ps.NewEngine()
	defer eng.Close()
	prog, err := eng.Compile(file, string(src))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	// Small keeps the grid tiny so fixed per-activation cost (bound
	// evaluation, allocation, loop setup, chunk dispatch) dominates;
	// Large is kernel-work-dominated and bounds the end-to-end effect.
	sizes := []struct {
		name    string
		m, maxK int64
	}{{"Small", 8, 3}, {"Large", 48, 4}}
	for _, sz := range sizes {
		args := []any{benchGrid(sz.m), sz.m, sz.maxK}
		run := func(b *testing.B, opts ...ps.RunOption) {
			b.Helper()
			r, err := prog.Prepare(module, opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := r.Run(ctx, args); err != nil {
					b.Fatal(err)
				}
			}
		}
		// Par2 forces pool dispatch even on a single-CPU host, so the
		// DOALL chunk path is always exercised; grain variants expose
		// chunking overhead for small bodies.
		b.Run(sz.name+"/Seq", func(b *testing.B) { run(b, ps.Sequential()) })
		b.Run(sz.name+"/Par2", func(b *testing.B) { run(b, ps.Workers(2)) })
		for _, g := range []int64{64, 1024} {
			b.Run(fmt.Sprintf("%s/Par2Grain%d", sz.name, g), func(b *testing.B) { run(b, ps.Workers(2), ps.Grain(g)) })
		}
	}
}

// BenchmarkWavefront_GaussSeidel measures the automatic §4 pass on the
// testdata Gauss–Seidel module: Seq is the all-iterative baseline the
// Figure 7 schedule admits, HyperOffParN shows that workers cannot help
// the untransformed nest, and AutoParN runs the compiler-generated
// wavefront plan at increasing widths — the speedup the tentpole claims.
func BenchmarkWavefront_GaussSeidel(b *testing.B) {
	sizes := []struct {
		name    string
		m, maxK int64
	}{{"Small", 24, 4}, {"Large", 96, 6}}
	benchWavefront(b, "testdata/gauss_seidel.ps", "Relaxation", func(m, maxK int64) []any {
		return []any{benchGrid(m), m, maxK}
	}, sizes)
}

// BenchmarkWavefront_SkewStencil is the same measurement on the 2-D
// skewed stencil, whose single sweep is entirely sequential without the
// transform.
func BenchmarkWavefront_SkewStencil(b *testing.B) {
	sizes := []struct {
		name    string
		m, maxK int64
	}{{"Small", 32, 0}, {"Large", 192, 0}}
	benchWavefront(b, "testdata/skew_stencil.ps", "SkewStencil", func(n, _ int64) []any {
		return []any{benchGrid(n), n}
	}, sizes)
}

// benchWavefront runs one dependence-carrying module through an Engine
// at Small/Large sizes under Seq, HyperOff×workers and Auto×workers.
func benchWavefront(b *testing.B, file, module string, argsFor func(m, maxK int64) []any,
	sizes []struct {
		name    string
		m, maxK int64
	}) {
	b.Helper()
	src, err := os.ReadFile(file)
	if err != nil {
		b.Fatal(err)
	}
	eng := ps.NewEngine()
	defer eng.Close()
	prog, err := eng.Compile(file, string(src))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	for _, sz := range sizes {
		args := argsFor(sz.m, sz.maxK)
		run := func(b *testing.B, opts ...ps.RunOption) {
			b.Helper()
			r, err := prog.Prepare(module, opts...)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := r.Run(ctx, args); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.Run(sz.name+"/Seq", func(b *testing.B) { run(b, ps.Sequential()) })
		workers := []int{2}
		for w := 4; w <= runtime.NumCPU(); w *= 2 {
			workers = append(workers, w)
		}
		for _, w := range workers {
			w := w
			b.Run(fmt.Sprintf("%s/HyperOffPar%d", sz.name, w), func(b *testing.B) {
				run(b, ps.Workers(w), ps.WithHyperplane(ps.HyperplaneOff))
			})
			b.Run(fmt.Sprintf("%s/AutoPar%d", sz.name, w), func(b *testing.B) {
				run(b, ps.Workers(w))
			})
			// The schedule ablation: the same wavefront plan under the
			// pinned per-plane barrier sweep vs the doacross pipeline.
			b.Run(fmt.Sprintf("%s/BarrierPar%d", sz.name, w), func(b *testing.B) {
				run(b, ps.Workers(w), ps.WithSchedule(ps.ScheduleBarrier))
			})
			b.Run(fmt.Sprintf("%s/DoacrossPar%d", sz.name, w), func(b *testing.B) {
				run(b, ps.Workers(w), ps.WithSchedule(ps.ScheduleDoacross))
			})
		}
	}
}

// --- native references ----------------------------------------------------

// nativeGS runs the Gauss–Seidel recurrence directly in Go, sequentially,
// with a two-plane window — the best the Figure 7 schedule can do.
func nativeGS(in []float64, m, maxK int64) []float64 {
	n := m + 2
	prev := make([]float64, n*n)
	copy(prev, in)
	next := make([]float64, n*n)
	for k := int64(2); k <= maxK; k++ {
		for i := int64(0); i < n; i++ {
			for j := int64(0); j < n; j++ {
				if i == 0 || j == 0 || i == m+1 || j == m+1 {
					next[i*n+j] = prev[i*n+j]
				} else {
					next[i*n+j] = (next[i*n+j-1] + next[(i-1)*n+j] +
						prev[i*n+j+1] + prev[(i+1)*n+j]) / 4
				}
			}
		}
		prev, next = next, prev
	}
	return prev
}

// nativeGSWavefront runs the same recurrence along t = 2k+i+j hyperplanes
// with the plane parallelized over workers — the execution the §4
// transformation yields, hand-written.
func nativeGSWavefront(in []float64, m, maxK int64, workers int) []float64 {
	n := m + 2
	// Three-plane window over k is not used here: keep per-k planes so
	// the in-plane dependences of Gauss–Seidel resolve by wavefront order.
	planes := make([][]float64, maxK+1)
	planes[1] = make([]float64, n*n)
	copy(planes[1], in)
	for k := int64(2); k <= maxK; k++ {
		planes[k] = make([]float64, n*n)
	}
	// Every cell (k,i,j) with 2k+i+j = t is independent of the others on
	// the same hyperplane. Each k contributes one anti-diagonal segment
	// i ∈ [max(0,t-2k-(m+1)), min(m+1,t-2k)]; segments are distributed
	// over the workers, so exactly the valid cells are visited.
	r := parRunner(workers)
	defer r.Close()
	for t := int64(4); t <= 2*maxK+2*(m+1); t++ {
		kLo := int64(2)
		if lo := (t - 2*(m+1) + 1) / 2; lo > kLo {
			kLo = lo
		}
		kHi := maxK
		if hi := t / 2; hi < kHi {
			kHi = hi
		}
		if kLo > kHi {
			continue
		}
		r.For(kLo, kHi, func(k int64) {
			d := t - 2*k // i+j on this plane
			iLo, iHi := int64(0), d
			if d-(m+1) > iLo {
				iLo = d - (m + 1)
			}
			if m+1 < iHi {
				iHi = m + 1
			}
			cur, prev := planes[k], planes[k-1]
			for i := iLo; i <= iHi; i++ {
				j := d - i
				if i == 0 || j == 0 || i == m+1 || j == m+1 {
					cur[i*n+j] = prev[i*n+j]
				} else {
					cur[i*n+j] = (cur[i*n+j-1] + cur[(i-1)*n+j] +
						prev[i*n+j+1] + prev[(i+1)*n+j]) / 4
				}
			}
		})
	}
	return planes[maxK]
}

// BenchmarkNative_GS isolates the §4 algorithmic shape from interpreter
// overhead: the sequential recurrence vs its wavefront execution at
// increasing worker counts, in plain Go.
func BenchmarkNative_GS(b *testing.B) {
	const m, maxK = 512, 24
	n := int64(m + 2)
	in := make([]float64, n*n)
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			in[i*n+j] = float64((i*31+j*17)%19) / 19.0
		}
	}
	b.Run("Seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			nativeGS(in, m, maxK)
		}
	})
	for w := 1; w <= runtime.NumCPU(); w *= 2 {
		b.Run(fmt.Sprintf("WavefrontPar%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nativeGSWavefront(in, m, maxK, w)
			}
		})
	}
}

// TestNativeWavefrontMatchesSeq guards the native benchmark kernels.
func TestNativeWavefrontMatchesSeq(t *testing.T) {
	const m, maxK = 33, 7
	n := int64(m + 2)
	in := make([]float64, n*n)
	for i := int64(1); i <= m; i++ {
		for j := int64(1); j <= m; j++ {
			in[i*n+j] = float64((i*31+j*17)%19) / 19.0
		}
	}
	a := nativeGS(in, m, maxK)
	bv := nativeGSWavefront(in, m, maxK, 4)
	for i := range a {
		if a[i] != bv[i] {
			t.Fatalf("element %d: seq %g, wavefront %g", i, a[i], bv[i])
		}
	}
}

// BenchmarkFusion is the ablation for the §5 loop-merging extension: a
// four-pass element-wise module executed with separate loops versus the
// fused single nest (fewer loop dispatches, better locality).
func BenchmarkFusion(b *testing.B) {
	const src = `
Chain: module (Xs: array[I] of real; N: int):
    [As: array [I] of real; Bs: array [I] of real;
     Cs: array [I] of real; Ds: array [I] of real];
type I = 0 .. N;
define
    As[I] = Xs[I] * 2.0 + 1.0;
    Bs[I] = As[I] * As[I];
    Cs[I] = Bs[I] - As[I];
    Ds[I] = sqrt(abs(Cs[I]));
end Chain;
`
	const n = 1 << 16
	prog := mustCompile(b, src)
	xs := ps.NewRealArray(ps.Axis{Lo: 0, Hi: n})
	for i := int64(0); i <= n; i++ {
		xs.SetF([]int64{i}, float64(i%97))
	}
	b.Run("Unfused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run("Chain", []any{xs, int64(n)}, ps.Workers(1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Fused", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := prog.Run("Chain", []any{xs, int64(n)}, ps.Workers(1), ps.Fused()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
