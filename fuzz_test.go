// Differential fuzzing: FuzzDifferential drives the psgen generator
// from the Go fuzz engine — each input picks a seed and an eligibility
// class, generates a well-typed program targeted at one scheduler
// cascade backend, and cross-checks every execution variant against
// the sequential reference (results bitwise, stats invariants, timing
// identity, panics and hangs). TestFuzzCorpusRegression replays the
// checked-in testdata/fuzz/ corpus — minimized programs that pinned
// real divergences, plus one exemplar per class — through the full
// variant matrix on every tier-1 run, including C parity when a C
// compiler is present.
package repro

import (
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/psgen"
)

func FuzzDifferential(f *testing.F) {
	for c := 0; c < int(psgen.NumClasses); c++ {
		f.Add(uint64(c)*17+1, byte(c))
	}
	f.Fuzz(func(t *testing.T, seed uint64, class byte) {
		sp := psgen.Generate(seed, psgen.Class(int(class)%int(psgen.NumClasses)))
		out := psgen.Check(context.Background(), sp, psgen.Options{
			Quick:   true,
			Timeout: 5 * time.Second,
		})
		for _, fd := range out.Findings {
			t.Errorf("%s", fd)
		}
		if out.Failed() {
			t.Fatalf("divergent program (seed=%d class=%s):\n%s", sp.Seed, sp.Class, sp.Render())
		}
	})
}

// TestFuzzCorpusRegression replays every pinned spec in testdata/fuzz/
// through the full differential matrix. Each .spec.json must render
// exactly the .ps checked in beside it (the human-readable artifact
// stays in sync with the replayed spec), and the check must be clean.
func TestFuzzCorpusRegression(t *testing.T) {
	specs, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*.spec.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) == 0 {
		t.Fatal("no specs in testdata/fuzz — the pinned corpus is missing")
	}

	opts := psgen.Options{Timeout: 20 * time.Second}
	if !testing.Short() {
		if cc, err := exec.LookPath("cc"); err == nil {
			opts.CC, opts.OpenMP = cc, true
		}
	}

	for _, path := range specs {
		path := path
		name := strings.TrimSuffix(filepath.Base(path), ".spec.json")
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sp, err := psgen.LoadSpec(path)
			if err != nil {
				t.Fatal(err)
			}
			src, err := os.ReadFile(strings.TrimSuffix(path, ".spec.json") + ".ps")
			if err != nil {
				t.Fatal(err)
			}
			if sp.Render() != string(src) {
				t.Fatalf("%s: checked-in .ps does not match the spec's rendering; regenerate with WriteRepro", name)
			}
			o := opts
			if testing.Short() {
				o.Quick = true
			}
			out := psgen.Check(context.Background(), sp, o)
			for _, fd := range out.Findings {
				t.Errorf("%s", fd)
			}
		})
	}
}
