// Command-level integration tests: drive psc and psrun the way a user
// would, against the testdata sources.
package repro

import (
	"bytes"
	"encoding/json"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func runGo(t *testing.T, stdin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

// TestPscFlowchart drives psc -dump flowchart on the Figure 1 source.
func TestPscFlowchart(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-dump", "flowchart", "testdata/relaxation.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"DOALL I (", "DO K (", "eq.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("flowchart output missing %q:\n%s", want, out)
		}
	}
}

// TestPscC drives C generation from the CLI.
func TestPscC(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-dump", "c", "-openmp", "testdata/relaxation.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"Relaxation_result", "#pragma omp parallel for", "/* DO K */"} {
		if !strings.Contains(out, want) {
			t.Errorf("C output missing %q", want)
		}
	}
}

// TestPscTransform drives the §4 rewrite from the CLI.
func TestPscTransform(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-transform", "eq.3", "testdata/gauss_seidel.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"time vector [2 1 1]", "RelaxationH", "At[Kt - 2,K - 1,I]"} {
		if !strings.Contains(out, want) {
			t.Errorf("transform output missing %q:\n%s", want, out)
		}
	}
}

// TestPsrunJSON drives execution with JSON inputs.
func TestPsrunJSON(t *testing.T) {
	out, errOut, err := runGo(t, "",
		"./cmd/psrun", "-in", "testdata/smooth_inputs.json", "testdata/smooth.ps")
	if err != nil {
		t.Fatalf("psrun: %v\n%s", err, errOut)
	}
	var result map[string][]float64
	if jerr := json.Unmarshal([]byte(out), &result); jerr != nil {
		t.Fatalf("output is not JSON: %v\n%s", jerr, out)
	}
	ys := result["Ys"]
	if len(ys) != 8 {
		t.Fatalf("Ys has %d elements: %v", len(ys), ys)
	}
	if ys[0] != 0 || ys[7] != 49 {
		t.Errorf("boundary not carried: %v", ys)
	}
	if ys[1] != (0.0+1+4)/3 {
		t.Errorf("Ys[1] = %v", ys[1])
	}
}

// TestPscPlan drives psc -dump plan: the lowered loop program listing.
func TestPscPlan(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-dump", "plan", "testdata/relaxation.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"plan Relaxation", "doall I, J collapse(2) leaf", "do K", "[kernel"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
}

// TestPsrunExplain drives psrun -explain: prints the plan the selected
// options would execute without running the module.
func TestPsrunExplain(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psrun", "-explain", "-fused", "-grain", "32", "testdata/relaxation.ps")
	if err != nil {
		t.Fatalf("psrun -explain: %v\n%s", err, errOut)
	}
	for _, want := range []string{"grain 32, fused plan", "plan Relaxation", "do K"} {
		if !strings.Contains(out, want) {
			t.Errorf("-explain output missing %q:\n%s", want, out)
		}
	}
}

// TestPsrunExitCodes builds psrun and checks the documented exit status
// split: 2 for usage errors, 1 for program diagnostics (with the typed
// fields rendered).
func TestPsrunExitCodes(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "psrun")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/psrun").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	exitCode := func(args ...string) (int, string) {
		var errb bytes.Buffer
		cmd := exec.Command(bin, args...)
		cmd.Stderr = &errb
		err := cmd.Run()
		if err == nil {
			return 0, errb.String()
		}
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("run: %v", err)
		}
		return ee.ExitCode(), errb.String()
	}
	// Usage: missing file → 2.
	if code, _ := exitCode("testdata/does_not_exist.ps"); code != 2 {
		t.Errorf("missing file: exit %d, want 2", code)
	}
	// Usage: unknown module → 2.
	if code, _ := exitCode("-module", "Nope", "testdata/relaxation.ps"); code != 2 {
		t.Errorf("unknown module: exit %d, want 2", code)
	}
	// Program diagnostic: missing inputs → 1, with typed fields.
	code, stderr := exitCode("testdata/relaxation.ps")
	if code != 1 {
		t.Errorf("missing inputs: exit %d, want 1", code)
	}
	for _, want := range []string{"phase:", "module:   Relaxation"} {
		if !strings.Contains(stderr, want) {
			t.Errorf("diagnostic missing %q:\n%s", want, stderr)
		}
	}
}

// TestPsreproOneArtifact drives the figure reproducer.
func TestPsreproOneArtifact(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psrepro", "-only", "fig5")
	if err != nil {
		t.Fatalf("psrepro: %v\n%s", err, errOut)
	}
	for _, want := range []string{"A, eq.3", "DO K (DOALL I (DOALL J (eq.3)))"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q:\n%s", want, out)
		}
	}
}
