// Command-level integration tests: drive psc and psrun the way a user
// would, against the testdata sources.
package repro

import (
	"bytes"
	"encoding/json"
	"os/exec"
	"strings"
	"testing"
)

func runGo(t *testing.T, stdin string, args ...string) (string, string, error) {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	return out.String(), errb.String(), err
}

// TestPscFlowchart drives psc -dump flowchart on the Figure 1 source.
func TestPscFlowchart(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-dump", "flowchart", "testdata/relaxation.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"DOALL I (", "DO K (", "eq.3"} {
		if !strings.Contains(out, want) {
			t.Errorf("flowchart output missing %q:\n%s", want, out)
		}
	}
}

// TestPscC drives C generation from the CLI.
func TestPscC(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-dump", "c", "-openmp", "testdata/relaxation.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"Relaxation_result", "#pragma omp parallel for", "/* DO K */"} {
		if !strings.Contains(out, want) {
			t.Errorf("C output missing %q", want)
		}
	}
}

// TestPscTransform drives the §4 rewrite from the CLI.
func TestPscTransform(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-transform", "eq.3", "testdata/gauss_seidel.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	for _, want := range []string{"time vector [2 1 1]", "RelaxationH", "At[Kt - 2,K - 1,I]"} {
		if !strings.Contains(out, want) {
			t.Errorf("transform output missing %q:\n%s", want, out)
		}
	}
}

// TestPsrunJSON drives execution with JSON inputs.
func TestPsrunJSON(t *testing.T) {
	out, errOut, err := runGo(t, "",
		"./cmd/psrun", "-in", "testdata/smooth_inputs.json", "testdata/smooth.ps")
	if err != nil {
		t.Fatalf("psrun: %v\n%s", err, errOut)
	}
	var result map[string][]float64
	if jerr := json.Unmarshal([]byte(out), &result); jerr != nil {
		t.Fatalf("output is not JSON: %v\n%s", jerr, out)
	}
	ys := result["Ys"]
	if len(ys) != 8 {
		t.Fatalf("Ys has %d elements: %v", len(ys), ys)
	}
	if ys[0] != 0 || ys[7] != 49 {
		t.Errorf("boundary not carried: %v", ys)
	}
	if ys[1] != (0.0+1+4)/3 {
		t.Errorf("Ys[1] = %v", ys[1])
	}
}

// TestPsreproOneArtifact drives the figure reproducer.
func TestPsreproOneArtifact(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psrepro", "-only", "fig5")
	if err != nil {
		t.Fatalf("psrepro: %v\n%s", err, errOut)
	}
	for _, want := range []string{"A, eq.3", "DO K (DOALL I (DOALL J (eq.3)))"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig5 output missing %q:\n%s", want, out)
		}
	}
}
