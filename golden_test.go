// Golden-file tests for plan-IR rendering: the listings of Runner.Explain,
// Module.Plan/PlanCompact and `psc -dump plan` are compared byte for byte
// against testdata/golden/*.txt, so any regression in the lowered loop
// programs — step order, collapse decisions, wavefront eligibility, the
// chosen π and window — shows up as a reviewable diff. Regenerate with
//
//	go test -run Golden -update
package repro

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/psrc"
	"repro/ps"
)

var update = flag.Bool("update", false, "rewrite testdata/golden files with the current output")

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with `go test -run Golden -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s differs from golden file (regenerate with `go test -run Golden -update` if intended):\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// goldenModule loads one corpus module for rendering.
func goldenModule(t *testing.T, src, module string) *ps.Module {
	t.Helper()
	prog, err := ps.CompileProgram(module+".ps", src)
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Module(module)
	if m == nil {
		t.Fatalf("no module %s", module)
	}
	return m
}

// TestGoldenPlanListings pins the indented plan listings of the
// representative modules: the Jacobi relaxation (DOALL planes inside DO
// K), the Gauss–Seidel revision in both hyperplane modes (wavefront step
// vs the untransformed DO nest), and the new dependence-carrying corpus
// programs.
func TestGoldenPlanListings(t *testing.T) {
	relax := goldenModule(t, psrc.Relaxation, "Relaxation")
	checkGolden(t, "relaxation_plan.txt", relax.Plan())

	gsSrc := mustRead(t, "testdata/gauss_seidel.ps")
	gs := goldenModule(t, gsSrc, "Relaxation")
	checkGolden(t, "gauss_seidel_plan.txt", gs.Plan())
	checkGolden(t, "gauss_seidel_plan_hyperoff.txt",
		gs.PlanWith(ps.PlanOptions{Hyperplane: ps.HyperplaneOff}))

	skew := goldenModule(t, mustRead(t, "testdata/skew_stencil.ps"), "SkewStencil")
	checkGolden(t, "skew_stencil_plan.txt", skew.Plan())

	diag := goldenModule(t, mustRead(t, "testdata/diag_chain.ps"), "DiagChain")
	checkGolden(t, "diag_chain_plan.txt", diag.Plan())

	// Multi-equation groups: the coupled component's single two-kernel
	// wavefront step, and the fused pair whose merged body collapses
	// into one wavefront only in the fused variant.
	coupled := goldenModule(t, mustRead(t, "testdata/coupled.ps"), "Coupled")
	checkGolden(t, "coupled_plan.txt", coupled.Plan())

	fp := goldenModule(t, mustRead(t, "testdata/fuse_pair.ps"), "FusePair")
	checkGolden(t, "fuse_pair_plan_fused.txt", fp.PlanWith(ps.PlanOptions{Fused: true}))

	// The DP-wavefront corpus program: anti-diagonal time vector with
	// an integer-sequence comparison feeding the recurrence.
	sw := goldenModule(t, mustRead(t, "testdata/smith_waterman.ps"), "SmithWaterman")
	checkGolden(t, "smith_waterman_plan.txt", sw.Plan())

	// The 3-D wavefront: the time vector pi = (1,1,1) spans the whole
	// cube nest.
	h3 := goldenModule(t, mustRead(t, "testdata/heat3d.ps"), "Heat3D")
	checkGolden(t, "heat3d_plan.txt", h3.Plan())

	// Region-partitioned DP: boundary-row/column DOALL steps scheduled
	// ahead of the interior wavefront over the 1 .. N subranges.
	ed := goldenModule(t, mustRead(t, "testdata/edit_distance.ps"), "EditDistance")
	checkGolden(t, "edit_distance_plan.txt", ed.Plan())
}

// TestGoldenPlanCompact pins the one-line Figure 6-style plan of every
// corpus program in one file, auto and hyperplane-off variants side by
// side — the quickest visual index of what the compiler decided.
func TestGoldenPlanCompact(t *testing.T) {
	var sb strings.Builder
	for _, tp := range variantPrograms(t) {
		prog, err := ps.CompileProgram(tp.name+".ps", tp.src)
		if err != nil {
			t.Fatalf("%s: %v", tp.name, err)
		}
		m := prog.Module(tp.module)
		fmt.Fprintf(&sb, "%s auto: %s\n", tp.name, m.PlanCompact())
		if off := m.PlanCompactWith(ps.PlanOptions{Hyperplane: ps.HyperplaneOff}); off != m.PlanCompact() {
			fmt.Fprintf(&sb, "%s off:  %s\n", tp.name, off)
		}
	}
	checkGolden(t, "plan_compact.txt", sb.String())
}

// TestGoldenExplain pins Runner.Explain — the execution-mode header plus
// the exact plan a prepared runner executes — for a wavefront module in
// both modes and for a sequential runner (where auto-hyperplane is
// intentionally inert).
func TestGoldenExplain(t *testing.T) {
	prog, err := ps.CompileProgram("gauss_seidel.ps", mustRead(t, "testdata/gauss_seidel.ps"))
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		file string
		opts []ps.RunOption
	}{
		{"gauss_seidel_explain_par2.txt", []ps.RunOption{ps.Workers(2)}},
		{"gauss_seidel_explain_par2_hyperoff.txt", []ps.RunOption{ps.Workers(2), ps.WithHyperplane(ps.HyperplaneOff)}},
		{"gauss_seidel_explain_seq.txt", []ps.RunOption{ps.Sequential()}},
		{"gauss_seidel_explain_par2_doacross.txt", []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleDoacross)}},
		{"gauss_seidel_explain_par2_barrier.txt", []ps.RunOption{ps.Workers(2), ps.WithSchedule(ps.ScheduleBarrier)}},
	} {
		run, err := prog.Prepare("Relaxation", tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.file, run.Explain())
	}

	// The multi-equation wavefront surface: Explain must show the
	// kernels sharing one π, indented under the wavefront step.
	coupled, err := ps.CompileProgram("coupled.ps", mustRead(t, "testdata/coupled.ps"))
	if err != nil {
		t.Fatal(err)
	}
	run, err := coupled.Prepare("Coupled", ps.Workers(2))
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "coupled_explain_par2.txt", run.Explain())
}

// TestGoldenPscPlan drives `psc -dump plan` the way a user would and
// checks the CLI emits exactly the golden plan listing (the same
// artifact Module.Plan renders), in both hyperplane modes.
func TestGoldenPscPlan(t *testing.T) {
	out, errOut, err := runGo(t, "", "./cmd/psc", "-dump", "plan", "testdata/gauss_seidel.ps")
	if err != nil {
		t.Fatalf("psc: %v\n%s", err, errOut)
	}
	checkGolden(t, "gauss_seidel_plan.txt", out)
	out, errOut, err = runGo(t, "", "./cmd/psc", "-dump", "plan", "-hyperplane", "off", "testdata/gauss_seidel.ps")
	if err != nil {
		t.Fatalf("psc -hyperplane off: %v\n%s", err, errOut)
	}
	checkGolden(t, "gauss_seidel_plan_hyperoff.txt", out)
}
